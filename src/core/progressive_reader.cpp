#include "core/progressive_reader.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "bitplane/bitplane.hpp"
#include "bitplane/predictive.hpp"
#include "coding/codec.hpp"
#include "util/parallel.hpp"

namespace ipcomp {

namespace {

void bitmap_set(Bytes& bm, std::size_t i) {
  bm[i >> 3] |= static_cast<std::uint8_t>(1u << (i & 7));
}

}  // namespace

template <typename T>
ProgressiveReader<T>::ProgressiveReader(SegmentSource& src, ReaderConfig cfg)
    : src_(src), cfg_(cfg) {
  const std::size_t at_open = src_.bytes_read();
  header_ = Header::parse(src_.header());
  unattributed_open_cost_ = src_.bytes_read() - at_open;
  if (header_.dtype != data_type_of<T>()) {
    throw std::runtime_error("ProgressiveReader: archive value type mismatch");
  }
  // Each container version carries exactly one header layout (v1 whole-field
  // interp, v2 block interp, v3 backend-tagged); a mismatch means a forged
  // or corrupted stream.
  const std::uint32_t container = src_.version();
  if (container != header_.format) {
    throw std::runtime_error(
        "ProgressiveReader: header/container version mismatch");
  }
  backend_ = &backend_for(header_.backend);
  backend_->validate_metadata(header_);
  if (container >= kArchiveV3) {
    // The backend defines which segment kinds may exist; anything else means
    // the header's backend id does not match the payload.
    for (const SegmentId& id : src_.segment_ids()) {
      const bool known = id.kind == kSegBase || id.kind == kSegPlane ||
                         (id.kind == kSegAux && backend_->has_aux_segment());
      if (!known) {
        throw std::runtime_error(
            "ProgressiveReader: segment kind not recognized by backend");
      }
    }
  }
  grid_ = BlockGrid::analyze(header_.dims, header_.block_side);
  if (header_.block_side == 0) {
    if (!header_.block_levels.empty()) {
      throw std::runtime_error("ProgressiveReader: unexpected block table");
    }
  } else if (header_.block_levels.size() != grid_.n_blocks) {
    throw std::runtime_error("ProgressiveReader: block table size mismatch");
  }

  blocks_.resize(grid_.n_blocks);
  for (std::size_t b = 0; b < grid_.n_blocks; ++b) {
    BlockState& bs = blocks_[b];
    bs.bc.dims = grid_.block_dims(b);
    bs.bc.origin = grid_.origin_linear(b);
    const auto counts = backend_->level_counts(bs.bc.dims);
    const auto& levels = levels_of(b);
    if (counts.size() != levels.size()) {
      throw std::runtime_error("ProgressiveReader: level count mismatch");
    }
    for (unsigned li = 0; li < counts.size(); ++li) {
      if (counts[li] != levels[li].count) {
        throw std::runtime_error("ProgressiveReader: level size mismatch");
      }
    }
    const unsigned L = static_cast<unsigned>(levels.size());
    bs.bc.codes.resize(L);
    bs.planes_used.assign(L, 0);
    bs.bc.outlier_bitmap.resize(L);
    bs.bc.outlier_value.resize(L);
    n_levels_ = std::max(n_levels_, L);
  }

  agg_planes_.assign(n_levels_, 0);
  for (std::size_t b = 0; b < grid_.n_blocks; ++b) {
    const auto& levels = levels_of(b);
    for (unsigned li = 0; li < levels.size(); ++li) {
      if (levels[li].progressive) {
        agg_planes_[li] = std::max(agg_planes_[li], levels[li].n_planes);
      }
    }
  }
  planes_used_.assign(n_levels_, 0);

  agg_plane_size_.resize(n_levels_);
  fetched_plane_bytes_.resize(n_levels_);
  for (unsigned li = 0; li < n_levels_; ++li) {
    agg_plane_size_[li].assign(agg_planes_[li], 0);
    fetched_plane_bytes_[li].assign(agg_planes_[li], 0);
  }
  for (std::size_t b = 0; b < grid_.n_blocks; ++b) {
    const auto& levels = levels_of(b);
    for (unsigned li = 0; li < levels.size(); ++li) {
      const LevelHeader& lh = levels[li];
      if (!lh.progressive || lh.n_planes == 0) continue;
      for (unsigned k = 0; k < lh.n_planes; ++k) {
        agg_plane_size_[li][k] += src_.segment_size(
            {kSegPlane, static_cast<std::uint16_t>(li + 1), k,
             static_cast<std::uint32_t>(b)});
      }
    }
  }
}

template <typename T>
void ProgressiveReader<T>::fetch_base(std::size_t b, FetchedBlock& out) {
  const auto& levels = levels_of(b);
  out.base.resize(levels.size());
  for (unsigned li = 0; li < levels.size(); ++li) {
    out.base[li] = src_.read_segment({kSegBase, static_cast<std::uint16_t>(li + 1),
                                      0, static_cast<std::uint32_t>(b)});
  }
  if (backend_->has_aux_segment()) {
    out.aux = src_.read_segment({kSegAux, 0, 0, static_cast<std::uint32_t>(b)});
  }
  out.has_base = true;
}

template <typename T>
void ProgressiveReader<T>::decode_base(std::size_t b, FetchedBlock& fetched) {
  BlockState& bs = blocks_[b];
  const auto& levels = levels_of(b);
  for (unsigned li = 0; li < levels.size(); ++li) {
    const LevelHeader& lh = levels[li];
    bs.bc.codes[li].assign(lh.count, 0);
    const Bytes& seg = fetched.base[li];
    ByteReader r({seg.data(), seg.size()});
    std::size_t n_out = r.varint();
    if (n_out != lh.outlier_count) {
      throw std::runtime_error("reader: outlier count mismatch");
    }
    if (n_out > 0) {
      bs.bc.outlier_bitmap[li].assign(plane_bytes(lh.count), 0);
      std::size_t slot = 0;
      for (std::size_t i = 0; i < n_out; ++i) {
        slot += r.varint();
        double value = r.f64();
        if (slot >= lh.count) {
          throw std::runtime_error("reader: outlier slot out of range");
        }
        bitmap_set(bs.bc.outlier_bitmap[li], slot);
        bs.bc.outlier_value[li][slot] = value;
      }
    }
    if (!lh.progressive) {
      std::size_t packed_size = r.varint();
      auto packed = r.bytes(packed_size);
      Bytes raw = codec_decompress(packed, lh.count * 4);
      for (std::size_t i = 0; i < lh.count; ++i) {
        bs.bc.codes[li][i] = static_cast<std::uint32_t>(raw[4 * i]) |
                             static_cast<std::uint32_t>(raw[4 * i + 1]) << 8 |
                             static_cast<std::uint32_t>(raw[4 * i + 2]) << 16 |
                             static_cast<std::uint32_t>(raw[4 * i + 3]) << 24;
      }
    }
  }
  bs.bc.aux = std::move(fetched.aux);
  bs.base_loaded = true;
}

template <typename T>
void ProgressiveReader<T>::ensure_base_loaded() {
  std::vector<FetchedBlock> fetched(grid_.n_blocks);
  bool any = false;
  for (std::size_t b = 0; b < grid_.n_blocks; ++b) {
    if (!blocks_[b].base_loaded) {
      fetch_base(b, fetched[b]);
      any = true;
    }
  }
  if (!any) return;
  parallel_for_ex(0, grid_.n_blocks, [&](std::size_t b) {
    if (fetched[b].has_base) decode_base(b, fetched[b]);
  }, /*grain=*/2);
}

template <typename T>
std::vector<unsigned> ProgressiveReader<T>::block_targets(
    std::size_t b, const std::vector<unsigned>& global) const {
  const auto& levels = levels_of(b);
  std::vector<unsigned> targets(levels.size(), 0);
  for (unsigned li = 0; li < levels.size(); ++li) {
    const LevelHeader& lh = levels[li];
    if (!lh.progressive || lh.n_planes == 0) continue;
    // The global axis counts planes from the top of the deepest block at
    // this level; a shallower block's missing high planes are all-zero, so
    // "use u of D" translates to dropping d = D − u of its lowest planes.
    const unsigned D = agg_planes_[li];
    const unsigned u = std::min(global[li], D);
    const unsigned d = D - u;
    targets[li] = lh.n_planes - std::min(d, lh.n_planes);
  }
  return targets;
}

template <typename T>
void ProgressiveReader<T>::fetch_planes(std::size_t b,
                                        const std::vector<unsigned>& targets,
                                        FetchedBlock& out) {
  const auto& levels = levels_of(b);
  const BlockState& bs = blocks_[b];
  for (unsigned li = 0; li < levels.size(); ++li) {
    const LevelHeader& lh = levels[li];
    if (!lh.progressive || lh.n_planes == 0) continue;
    const unsigned target = std::min(targets[li], lh.n_planes);
    // Planes are indexed by absolute bit position: using `u` planes from the
    // top means planes [n_planes - u, n_planes), fetched MSB-first so the
    // predictive XOR prefix bits are always resident before a plane decodes.
    for (unsigned used = bs.planes_used[li] + 1; used <= target; ++used) {
      const unsigned k = lh.n_planes - used;
      Bytes payload =
          src_.read_segment({kSegPlane, static_cast<std::uint16_t>(li + 1), k,
                             static_cast<std::uint32_t>(b)});
      fetched_plane_bytes_[li][k] += payload.size();
      out.planes.emplace_back(li, k, std::move(payload));
    }
  }
}

template <typename T>
void ProgressiveReader<T>::decode_and_reconstruct(std::size_t b,
                                                  FetchedBlock& fetched) {
  BlockState& bs = blocks_[b];
  const auto& levels = levels_of(b);
  std::vector<std::vector<std::uint32_t>> delta;
  if (bs.have_recon && !fetched.planes.empty() && backend_->wants_delta()) {
    delta.resize(levels.size());
  }

  for (auto& [li, k, seg] : fetched.planes) {
    const LevelHeader& lh = levels[li];
    Bytes encoded = codec_decompress({seg.data(), seg.size()},
                                     plane_bytes(lh.count));
    Bytes plane = header_.prefix_bits == 0
                      ? std::move(encoded)
                      : predictive_encode_plane(bs.bc.codes[li], encoded, k,
                                                header_.prefix_bits);
    deposit_plane(bs.bc.codes[li], plane, k);
    if (!delta.empty()) {
      if (delta[li].empty()) delta[li].assign(lh.count, 0);
      deposit_plane(delta[li], plane, k);
    }
    bs.planes_used[li] = lh.n_planes - k;
  }

  if (!bs.have_recon) {
    backend_->reconstruct(header_, bs.bc, xhat_.data());
    bs.have_recon = true;
    return;
  }
  if (fetched.planes.empty()) return;
  backend_->refine(header_, bs.bc, delta, xhat_.data());
}

template <typename T>
std::vector<LevelPlanInput> ProgressiveReader<T>::planner_inputs() const {
  const double step = 2.0 * header_.eb;
  std::vector<LevelPlanInput> inputs(n_levels_);
  for (unsigned li = 0; li < n_levels_; ++li) {
    const unsigned D = agg_planes_[li];
    LevelPlanInput& in = inputs[li];
    if (D == 0) {
      in.err.assign(1, 0.0);
      in.already_loaded = 0;
      continue;
    }
    const double amp =
        backend_->amplification(header_, cfg_.error_model, li + 1);
    // Aggregate the level across blocks: plane sizes sum (fetching global
    // plane k touches every block that stores it), truncation losses max
    // (the field's L∞ error is the worst block's).  Bytes already fetched —
    // including blocks request_region pushed past the global floor — are
    // sunk cost: pricing them again would make byte budgets under-fetch.
    in.plane_size.resize(D);
    for (unsigned k = 0; k < D; ++k) {
      in.plane_size[k] = agg_plane_size_[li][k] - fetched_plane_bytes_[li][k];
    }
    in.err.assign(D + 1, 0.0);
    for (std::size_t b = 0; b < grid_.n_blocks; ++b) {
      const auto& levels = levels_of(b);
      if (li >= levels.size()) continue;
      const LevelHeader& lh = levels[li];
      if (!lh.progressive || lh.n_planes == 0) continue;
      for (unsigned d = 0; d <= D; ++d) {
        const double e =
            amp * static_cast<double>(lh.loss[std::min(d, lh.n_planes)]) * step;
        in.err[d] = std::max(in.err[d], e);
      }
    }
    in.already_loaded = planes_used_[li];
  }
  return inputs;
}

template <typename T>
RetrievalStats ProgressiveReader<T>::finish_stats(std::size_t before) {
  RetrievalStats st;
  st.guaranteed_error = current_guaranteed_error();
  st.bytes_total = src_.bytes_read();
  st.bytes_new = st.bytes_total - before;
  st.bitrate = 8.0 * static_cast<double>(st.bytes_total) /
               static_cast<double>(header_.dims.count());
  return st;
}

template <typename T>
RetrievalStats ProgressiveReader<T>::apply_plan(const LoadPlan& plan,
                                                std::size_t bytes_before) {
  // bytes_before is snapshotted at request entry so the first request's
  // bytes_new includes the mandatory base-segment cost; the construction-time
  // header read is attributed here too, exactly once.
  const std::size_t before = bytes_before - unattributed_open_cost_;
  unattributed_open_cost_ = 0;

  std::vector<unsigned> global(n_levels_, 0);
  for (unsigned li = 0; li < n_levels_; ++li) {
    global[li] = std::min(
        std::max(plan.planes_to_use[li], planes_used_[li]), agg_planes_[li]);
  }

  // Fetch serially (the source counts bytes), then decode and reconstruct
  // the blocks concurrently — each block's inner loops run serially inside
  // the outer parallel region (nested-parallelism guard), so output is
  // deterministic.
  std::vector<FetchedBlock> fetched(grid_.n_blocks);
  for (std::size_t b = 0; b < grid_.n_blocks; ++b) {
    fetch_planes(b, block_targets(b, global), fetched[b]);
  }

  if (xhat_.empty()) xhat_.assign(header_.dims.count(), T{});
  parallel_for_ex(0, grid_.n_blocks, [&](std::size_t b) {
    decode_and_reconstruct(b, fetched[b]);
  }, /*grain=*/2);
  planes_used_ = std::move(global);
  return finish_stats(before);
}

template <typename T>
double ProgressiveReader<T>::current_guaranteed_error() const {
  const double step = 2.0 * header_.eb;
  double err = header_.eb;
  for (unsigned li = 0; li < n_levels_; ++li) {
    const unsigned D = agg_planes_[li];
    if (D == 0) continue;
    const unsigned d = D - planes_used_[li];
    const double amp =
        backend_->amplification(header_, cfg_.error_model, li + 1);
    double worst = 0.0;
    for (std::size_t b = 0; b < grid_.n_blocks; ++b) {
      const auto& levels = levels_of(b);
      if (li >= levels.size()) continue;
      const LevelHeader& lh = levels[li];
      if (!lh.progressive || lh.n_planes == 0) continue;
      worst = std::max(
          worst, static_cast<double>(lh.loss[std::min(d, lh.n_planes)]));
    }
    err += amp * worst * step;
  }
  return err;
}

template <typename T>
RetrievalStats ProgressiveReader<T>::request_error_bound(double target) {
  const std::size_t before = src_.bytes_read();
  ensure_base_loaded();
  const double budget = target - header_.eb;
  auto plan = plan_error_bound(planner_inputs(), budget, cfg_.planner);
  return apply_plan(plan, before);
}

template <typename T>
RetrievalStats ProgressiveReader<T>::request_bytes(std::uint64_t budget_bytes) {
  const std::size_t before = src_.bytes_read();
  ensure_base_loaded();
  const std::size_t mandatory = src_.bytes_read() - before;
  const std::uint64_t remaining =
      budget_bytes > mandatory ? budget_bytes - mandatory : 0;
  auto plan = plan_byte_budget(planner_inputs(), remaining, cfg_.planner);
  return apply_plan(plan, before);
}

template <typename T>
RetrievalStats ProgressiveReader<T>::request_bitrate(double bits_per_value) {
  const double total_budget =
      bits_per_value * static_cast<double>(header_.dims.count()) / 8.0;
  const double already = static_cast<double>(src_.bytes_read());
  std::uint64_t budget =
      total_budget > already
          ? static_cast<std::uint64_t>(total_budget - already)
          : 0;
  return request_bytes(budget);
}

template <typename T>
RetrievalStats ProgressiveReader<T>::request_full() {
  const std::size_t before = src_.bytes_read();
  ensure_base_loaded();
  LoadPlan plan;
  plan.planes_to_use.assign(agg_planes_.begin(), agg_planes_.end());
  return apply_plan(plan, before);
}

template <typename T>
RetrievalStats ProgressiveReader<T>::request_region(
    const std::array<std::size_t, kMaxRank>& lo,
    const std::array<std::size_t, kMaxRank>& hi) {
  for (std::size_t i = 0; i < header_.dims.rank(); ++i) {
    if (lo[i] >= hi[i] || hi[i] > header_.dims[i]) {
      throw std::invalid_argument("request_region: bad region bounds");
    }
  }
  const std::size_t before = src_.bytes_read() - unattributed_open_cost_;
  unattributed_open_cost_ = 0;

  // Touch only intersecting blocks: fetch their base + all remaining planes,
  // then decode and reconstruct them concurrently at full fidelity.
  std::vector<std::size_t> selected;
  for (std::size_t b = 0; b < grid_.n_blocks; ++b) {
    if (grid_.intersects(b, lo, hi)) selected.push_back(b);
  }
  std::vector<FetchedBlock> fetched(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const std::size_t b = selected[i];
    if (!blocks_[b].base_loaded) fetch_base(b, fetched[i]);
    std::vector<unsigned> full(levels_of(b).size());
    for (unsigned li = 0; li < full.size(); ++li) {
      full[li] = levels_of(b)[li].n_planes;
    }
    // fetch_planes consults planes_used, which is only valid once the base
    // has been decoded; a block fetched fresh here has planes_used == 0.
    fetch_planes(b, full, fetched[i]);
  }

  if (xhat_.empty()) xhat_.assign(header_.dims.count(), T{});
  parallel_for_ex(0, selected.size(), [&](std::size_t i) {
    const std::size_t b = selected[i];
    if (fetched[i].has_base) decode_base(b, fetched[i]);
    decode_and_reconstruct(b, fetched[i]);
  }, /*grain=*/2);

  RetrievalStats st = finish_stats(before);
  // The loaded blocks are at full fidelity: within the region the guarantee
  // is the compression bound, regardless of the global plane floor.
  st.guaranteed_error = header_.eb;
  return st;
}

template class ProgressiveReader<float>;
template class ProgressiveReader<double>;

}  // namespace ipcomp
