// User-facing compression options.
#pragma once

#include <cstddef>

#include "interp/interpolation.hpp"

namespace ipcomp {

struct Options {
  /// Quantization error bound.  When `relative` is true this is multiplied by
  /// the data range (max − min) at compression time, matching the paper's
  /// "eb = 1e-9 × Range(dataset)" convention.
  double error_bound = 1e-6;
  bool relative = true;

  InterpKind interp = InterpKind::kCubic;

  /// Prefix width of the predictive bitplane coder (paper Table 2: 2 is the
  /// sweet spot).  0 disables prediction (raw bitplanes).
  unsigned prefix_bits = 2;

  /// Levels with fewer elements than this are stored whole (not bitplaned):
  /// their segments are tiny and always loaded — the paper's L_p cutoff.
  std::size_t progressive_threshold = 4096;

  /// Allow the LZ77 stage when choosing per-plane codecs (RLE-only is faster
  /// to compress, LZH usually smaller).
  bool try_lzh = true;
};

}  // namespace ipcomp
