// User-facing compression options.
#pragma once

#include <cstddef>

#include "coding/codec.hpp"
#include "core/header.hpp"
#include "interp/interpolation.hpp"

namespace ipcomp {

struct Options {
  /// Progressive backend that runs the per-block transform -> quantize ->
  /// bitplane pipeline.  kInterp is the paper's interpolation predictor and
  /// writes archive format v1/v2; every other backend (e.g. kWavelet, a
  /// CDF 9/7 transform) writes format v3.  All backends serve the same
  /// ProgressiveReader Request API, including region-scoped requests.
  BackendId backend = BackendId::kInterp;

  /// Quantization error bound.  When `relative` is true this is multiplied by
  /// the data range (max − min) at compression time, matching the paper's
  /// "eb = 1e-9 × Range(dataset)" convention.
  double error_bound = 1e-6;
  bool relative = true;

  InterpKind interp = InterpKind::kCubic;

  /// Prefix width of the predictive bitplane coder (paper Table 2: 2 is the
  /// sweet spot).  0 disables prediction (raw bitplanes).
  unsigned prefix_bits = 2;

  /// Levels with fewer elements than this are stored whole (not bitplaned):
  /// their segments are tiny and always loaded — the paper's L_p cutoff.
  std::size_t progressive_threshold = 4096;

  /// How the lossless stage picks a per-segment codec (coding/codec.hpp).
  /// kProbe routes each segment by a cheap entropy probe (default); kTryAll
  /// is the legacy encode-both-keep-smallest strategy (byte-identical to
  /// pre-orchestration archives, replacing `try_lzh = true`); kRle is the
  /// old `try_lzh = false` cheap path.
  CodecPolicy codec = CodecPolicy::kProbe;

  /// Record a per-segment XXH64 checksum at build time (archive container
  /// v4, wrapping whichever base version the backend picks).  Every physical
  /// read — file, mmap, cache insert, wire frame — then verifies the payload
  /// and surfaces IntegrityError instead of corrupt data.  Off reproduces
  /// the pre-v4 container byte-for-byte (golden archives, size-sensitive
  /// comparisons against other compressors).
  bool integrity = true;

  /// Side length of the cubic blocks the field is decomposed into (archive
  /// format v2).  Blocks are compressed independently and concurrently, and
  /// readers can decode only the blocks intersecting a region of interest.
  /// 0 = legacy whole-field mode (archive format v1); 1 is rejected.  For
  /// throughput, pick a side so the block count is at least the thread count
  /// (e.g. 64 for a 256^3 field); tiny blocks cost compression ratio.
  std::size_t block_side = 0;
};

}  // namespace ipcomp
