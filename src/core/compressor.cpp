#include "core/compressor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/backend.hpp"
#include "core/blocks.hpp"
#include "core/header.hpp"
#include "io/archive.hpp"
#include "util/parallel.hpp"

namespace ipcomp {

namespace {

template <typename T>
std::pair<double, double> min_max(NdConstView<T> v) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < v.count(); ++i) {
    double x = static_cast<double>(v[i]);
    if (std::isfinite(x)) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
  }
  if (!std::isfinite(lo)) {
    lo = 0.0;
    hi = 0.0;
  }
  return {lo, hi};
}

}  // namespace

double resolve_error_bound(const Options& opt, double data_min, double data_max) {
  // Negated comparison so NaN bounds are rejected too, not quantized with.
  if (!(opt.error_bound > 0.0) || !std::isfinite(opt.error_bound)) {
    throw std::invalid_argument("ipcomp: error bound must be positive");
  }
  if (!opt.relative) return opt.error_bound;
  double range = data_max - data_min;
  if (range <= 0.0) range = 1.0;  // constant field: any positive bound works
  return opt.error_bound * range;
}

template <typename T>
double resolve_error_bound(NdConstView<T> input, const Options& opt) {
  auto [lo, hi] = min_max(input);
  return resolve_error_bound(opt, lo, hi);
}

template <typename T>
Bytes compress(NdConstView<T> input, const Options& opt) {
  const ProgressiveBackend& backend = backend_for(opt.backend);
  const Dims dims = input.dims();
  // Any side >= the largest extent yields one block per dimension, so clamp
  // there: the header stores the side as u32, and grid and header must
  // derive from the same value or the archive becomes unreadable.
  std::size_t block_side = opt.block_side;
  if (block_side != 0) {
    block_side =
        std::min(block_side, std::max<std::size_t>(2, dims.max_extent()));
    if (block_side > 0xFFFFFFFFu) {
      throw std::invalid_argument("ipcomp: block side too large");
    }
  }
  const BlockGrid grid = BlockGrid::analyze(dims, block_side);

  auto [lo, hi] = min_max(input);
  const double eb = resolve_error_bound(opt, lo, hi);

  // The work buffer is a mutable copy of the field (interp keeps its in-loop
  // reconstruction there); transform backends never touch it, so skip the
  // field-sized allocation for them.
  std::vector<T> xhat;
  if (backend.needs_work_buffer()) {
    xhat.assign(input.span().begin(), input.span().end());
  }
  T* const work = xhat.empty() ? nullptr : xhat.data();
  const T* original = input.data();
  const auto estrides = dims.strides();

  Header header;
  header.dtype = data_type_of<T>();
  header.dims = dims;
  header.eb = eb;
  header.interp = opt.interp;
  header.prefix_bits = opt.prefix_bits;
  header.data_min = lo;
  header.data_max = hi;
  header.block_side = static_cast<std::uint32_t>(block_side);
  header.backend = opt.backend;
  header.backend_meta = backend.metadata(header);

  // The interpolation backend keeps writing the original self-describing
  // v1/v2 containers; any other backend needs the v3 header (backend id +
  // metadata) and therefore the v3 container.
  ArchiveBuilder builder;
  if (opt.backend == BackendId::kInterp) {
    builder.set_version(block_side == 0 ? kArchiveV1 : kArchiveV2);
  } else {
    builder.set_version(kArchiveV3);
  }
  builder.set_integrity(opt.integrity);

  if (block_side == 0) {
    // Legacy whole-field mode: one block spanning the field; the backend's
    // inner loops parallelize.
    BlockCompressResult res =
        backend.compress_block(original, work, dims, estrides, eb, opt, 0);
    header.levels = std::move(res.levels);
    for (auto& [id, payload] : res.segments) {
      builder.add_segment(id, std::move(payload));
    }
  } else {
    // Block mode: the whole pipeline runs per block, concurrently.  grain=2
    // keeps a lone block out of a parallel region so its inner loops can
    // still use the pool.
    std::vector<BlockCompressResult> results(grid.n_blocks);
    parallel_for(0, grid.n_blocks, [&](std::size_t b) {
      const std::size_t org = grid.origin_linear(b);
      results[b] = backend.compress_block(original + org,
                                          work ? work + org : nullptr,
                                          grid.block_dims(b), estrides, eb,
                                          opt, static_cast<std::uint32_t>(b));
    }, /*grain=*/2);
    header.block_levels.resize(grid.n_blocks);
    for (std::size_t b = 0; b < grid.n_blocks; ++b) {
      header.block_levels[b] = std::move(results[b].levels);
      for (auto& [id, payload] : results[b].segments) {
        builder.add_segment(id, std::move(payload));
      }
    }
  }

  builder.set_header(header.serialize());
  return builder.finish();
}

template Bytes compress<float>(NdConstView<float>, const Options&);
template Bytes compress<double>(NdConstView<double>, const Options&);
template double resolve_error_bound<float>(NdConstView<float>, const Options&);
template double resolve_error_bound<double>(NdConstView<double>, const Options&);

}  // namespace ipcomp
