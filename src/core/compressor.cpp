#include "core/compressor.hpp"

#include <algorithm>
#include <bit>
#include <mutex>
#include <stdexcept>

#include "bitplane/bitplane.hpp"
#include "bitplane/negabinary.hpp"
#include "bitplane/predictive.hpp"
#include "coding/codec.hpp"
#include "core/blocks.hpp"
#include "core/header.hpp"
#include "interp/sweep.hpp"
#include "io/archive.hpp"
#include "quant/quantizer.hpp"
#include "util/parallel.hpp"

namespace ipcomp {

namespace {

struct LevelScratch {
  std::vector<std::uint32_t> codes;                        // negabinary
  std::vector<std::pair<std::uint64_t, double>> outliers;  // slot -> raw value
};

template <typename T>
std::pair<double, double> min_max(NdConstView<T> v) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < v.count(); ++i) {
    double x = static_cast<double>(v[i]);
    if (std::isfinite(x)) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
  }
  if (!std::isfinite(lo)) {
    lo = 0.0;
    hi = 0.0;
  }
  return {lo, hi};
}

Bytes serialize_base_segment(const LevelScratch& ls, bool progressive, bool try_lzh) {
  ByteWriter w;
  w.varint(ls.outliers.size());
  std::uint64_t prev = 0;
  for (auto [slot, value] : ls.outliers) {
    w.varint(slot - prev);
    w.f64(value);
    prev = slot;
  }
  if (!progressive) {
    // Solid level: store the whole code array through the codec.
    Bytes raw(ls.codes.size() * 4);
    for (std::size_t i = 0; i < ls.codes.size(); ++i) {
      std::uint32_t c = ls.codes[i];
      raw[4 * i + 0] = static_cast<std::uint8_t>(c);
      raw[4 * i + 1] = static_cast<std::uint8_t>(c >> 8);
      raw[4 * i + 2] = static_cast<std::uint8_t>(c >> 16);
      raw[4 * i + 3] = static_cast<std::uint8_t>(c >> 24);
    }
    Bytes packed = codec_compress({raw.data(), raw.size()}, try_lzh);
    w.varint(packed.size());
    w.bytes(packed);
  }
  return w.take();
}

/// One block's compressed output: its level table plus its segments in
/// deterministic (level, plane) order.  Blocks are assembled concurrently
/// into a pre-sized vector indexed by block ordinal, so the archive layout
/// is byte-identical regardless of thread count.
struct BlockResult {
  std::vector<LevelHeader> levels;
  std::vector<std::pair<SegmentId, Bytes>> segments;
};

/// Full per-block pipeline: interpolation sweep (in-loop quantization) →
/// negabinary codes + outliers → bitplane split → predictive XOR → codec.
/// `original` and `xhat` point at the block's origin element; `estrides` are
/// the strides of the enclosing field, so the sweep addresses the block as a
/// strided sub-view in place.
template <typename T>
BlockResult compress_block(const T* original, T* xhat, const LevelStructure& ls,
                           const std::array<std::size_t, kMaxRank>& estrides,
                           double eb, const Options& opt, std::uint32_t block) {
  const unsigned L = ls.num_levels;
  const LinearQuantizer quant(eb);

  std::vector<LevelScratch> levels(L);
  for (unsigned li = 0; li < L; ++li) {
    levels[li].codes.assign(ls.level_count[li], 0);
  }

  // Outlier lists are per block; the mutex only matters in whole-field mode,
  // where the sweep's line loop is the parallel one.  In block mode the
  // nested-parallelism guard keeps this sweep serial and the lock free.
  std::mutex outlier_mutex;

  // In-loop quantization: the working buffer holds reconstructed values so
  // predictions see exactly what decompression will see.
  interpolation_sweep_strided(
      xhat, ls, opt.interp, estrides,
      [&](unsigned li, std::size_t slot, std::size_t idx, T pred) -> T {
        std::int64_t code;
        T recon;
        if (quant.quantize(original[idx], pred, code, recon)) {
          levels[li].codes[slot] = negabinary_encode(code);
          return recon;
        }
        {
          std::lock_guard<std::mutex> lock(outlier_mutex);
          levels[li].outliers.emplace_back(slot,
                                           static_cast<double>(original[idx]));
        }
        return original[idx];
      });

  BlockResult out;
  out.levels.resize(L);

  for (unsigned li = 0; li < L; ++li) {
    LevelScratch& scratch = levels[li];
    // Slots are unique per level, so sorting makes the outlier order (and
    // with it the serialized bytes) independent of sweep scheduling.
    std::sort(scratch.outliers.begin(), scratch.outliers.end());
    LevelHeader& lh = out.levels[li];
    lh.count = scratch.codes.size();
    lh.outlier_count = scratch.outliers.size();
    lh.progressive = scratch.codes.size() >= opt.progressive_threshold;

    const std::uint16_t level_tag = static_cast<std::uint16_t>(li + 1);
    if (!lh.progressive) {
      lh.n_planes = 0;
      lh.loss.assign(1, 0);
      out.segments.emplace_back(
          SegmentId{kSegBase, level_tag, 0, block},
          serialize_base_segment(scratch, false, opt.try_lzh));
      continue;
    }

    std::uint32_t all = 0;
    for (std::uint32_t c : scratch.codes) all |= c;
    const unsigned n_planes = all == 0 ? 0 : 32 - std::countl_zero(all);
    lh.n_planes = n_planes;

    auto loss = truncation_loss_table(scratch.codes);
    lh.loss.resize(n_planes + 1);
    for (unsigned d = 0; d <= n_planes; ++d) {
      lh.loss[d] = static_cast<std::uint64_t>(loss[d]);
    }

    out.segments.emplace_back(
        SegmentId{kSegBase, level_tag, 0, block},
        serialize_base_segment(scratch, true, opt.try_lzh));

    if (n_planes > 0) {
      auto planes = extract_all_planes(scratch.codes);
      std::vector<Bytes> packed(n_planes);
      parallel_for(0, n_planes, [&](std::size_t k) {
        Bytes encoded = opt.prefix_bits == 0
                            ? planes[k]
                            : predictive_encode_plane(scratch.codes, planes[k],
                                                      static_cast<unsigned>(k),
                                                      opt.prefix_bits);
        packed[k] = codec_compress({encoded.data(), encoded.size()}, opt.try_lzh);
      }, /*grain=*/1);
      for (unsigned k = 0; k < n_planes; ++k) {
        out.segments.emplace_back(SegmentId{kSegPlane, level_tag, k, block},
                                  std::move(packed[k]));
      }
    }
  }
  return out;
}

}  // namespace

double resolve_error_bound(const Options& opt, double data_min, double data_max) {
  if (opt.error_bound <= 0.0) {
    throw std::invalid_argument("ipcomp: error bound must be positive");
  }
  if (!opt.relative) return opt.error_bound;
  double range = data_max - data_min;
  if (range <= 0.0) range = 1.0;  // constant field: any positive bound works
  return opt.error_bound * range;
}

template <typename T>
double resolve_error_bound(NdConstView<T> input, const Options& opt) {
  auto [lo, hi] = min_max(input);
  return resolve_error_bound(opt, lo, hi);
}

template <typename T>
Bytes compress(NdConstView<T> input, const Options& opt) {
  const Dims dims = input.dims();
  // Any side >= the largest extent yields one block per dimension, so clamp
  // there: the header stores the side as u32, and grid and header must
  // derive from the same value or the archive becomes unreadable.
  std::size_t block_side = opt.block_side;
  if (block_side != 0) {
    block_side =
        std::min(block_side, std::max<std::size_t>(2, dims.max_extent()));
    if (block_side > 0xFFFFFFFFu) {
      throw std::invalid_argument("ipcomp: block side too large");
    }
  }
  const BlockGrid grid = BlockGrid::analyze(dims, block_side);

  auto [lo, hi] = min_max(input);
  const double eb = resolve_error_bound(opt, lo, hi);

  std::vector<T> xhat(input.span().begin(), input.span().end());
  const T* original = input.data();
  const auto estrides = dims.strides();

  Header header;
  header.dtype = data_type_of<T>();
  header.dims = dims;
  header.eb = eb;
  header.interp = opt.interp;
  header.prefix_bits = opt.prefix_bits;
  header.data_min = lo;
  header.data_max = hi;
  header.block_side = static_cast<std::uint32_t>(block_side);

  ArchiveBuilder builder;
  builder.set_version(block_side == 0 ? kArchiveV1 : kArchiveV2);

  if (block_side == 0) {
    // Legacy whole-field mode: one block spanning the field; the sweep and
    // plane codecs parallelize internally.
    BlockResult res = compress_block(original, xhat.data(),
                                     LevelStructure::analyze(dims), estrides,
                                     eb, opt, 0);
    header.levels = std::move(res.levels);
    for (auto& [id, payload] : res.segments) {
      builder.add_segment(id, std::move(payload));
    }
  } else {
    // Block mode: the whole pipeline runs per block, concurrently.  grain=2
    // keeps a lone block out of a parallel region so its inner loops can
    // still use the pool.
    std::vector<BlockResult> results(grid.n_blocks);
    parallel_for(0, grid.n_blocks, [&](std::size_t b) {
      const std::size_t org = grid.origin_linear(b);
      results[b] = compress_block(original + org, xhat.data() + org,
                                  LevelStructure::analyze(grid.block_dims(b)),
                                  estrides, eb, opt,
                                  static_cast<std::uint32_t>(b));
    }, /*grain=*/2);
    header.block_levels.resize(grid.n_blocks);
    for (std::size_t b = 0; b < grid.n_blocks; ++b) {
      header.block_levels[b] = std::move(results[b].levels);
      for (auto& [id, payload] : results[b].segments) {
        builder.add_segment(id, std::move(payload));
      }
    }
  }

  builder.set_header(header.serialize());
  return builder.finish();
}

template Bytes compress<float>(NdConstView<float>, const Options&);
template Bytes compress<double>(NdConstView<double>, const Options&);
template double resolve_error_bound<float>(NdConstView<float>, const Options&);
template double resolve_error_bound<double>(NdConstView<double>, const Options&);

}  // namespace ipcomp
