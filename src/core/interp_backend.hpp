// The paper's interpolation backend behind the ProgressiveBackend seam.
//
// Write side: multi-level interpolation sweep with in-loop quantization
// (paper §4.1/§4.2) producing per-level negabinary codes + outliers, then the
// shared bitplane/codec stages.  Read side: the same sweep driven by
// dequantized codes (Algorithm 1), and a delta sweep over newly deposited
// bits for incremental refinement (Algorithm 2).  This backend is the
// behavior-preserving refactor of the original hardwired pipeline: archives
// are byte-identical to those written before the seam existed (v1/v2).
#pragma once

#include "core/backend.hpp"

namespace ipcomp {

class InterpBackend final : public ProgressiveBackend {
 public:
  BackendId id() const override { return BackendId::kInterp; }
  const char* name() const override { return "interp"; }

  std::vector<std::uint64_t> level_counts(const Dims& block_dims) const override;
  bool has_aux_segment() const override { return false; }
  Bytes metadata(const Header&) const override { return {}; }
  void validate_metadata(const Header&) const override {}
  double amplification(const Header& h, ErrorModel model,
                       unsigned l) const override;

  BlockCompressResult compress_block(
      const float* original, float* work, const Dims& block_dims,
      const std::array<std::size_t, kMaxRank>& estrides, double eb,
      const Options& opt, std::uint32_t block) const override;
  BlockCompressResult compress_block(
      const double* original, double* work, const Dims& block_dims,
      const std::array<std::size_t, kMaxRank>& estrides, double eb,
      const Options& opt, std::uint32_t block) const override;

  void reconstruct(const Header& h, const BlockCodes& bc,
                   float* field) const override;
  void reconstruct(const Header& h, const BlockCodes& bc,
                   double* field) const override;
  void refine(const Header& h, const BlockCodes& bc,
              const std::vector<std::vector<std::uint32_t>>& delta,
              float* field) const override;
  void refine(const Header& h, const BlockCodes& bc,
              const std::vector<std::vector<std::uint32_t>>& delta,
              double* field) const override;
};

}  // namespace ipcomp
