// IPComp archive header: everything the optimized data loader needs to plan a
// retrieval without touching payload segments (paper §5: δy tables are
// "pre-computed during compression").
#pragma once

#include <cstdint>
#include <vector>

#include "interp/interpolation.hpp"
#include "io/bytes.hpp"
#include "util/dims.hpp"

namespace ipcomp {

enum class DataType : std::uint8_t { kFloat32 = 0, kFloat64 = 1 };

/// Progressive-backend identifier stored in v3 archive headers.  The backend
/// owns the per-block transform -> quantize -> bitplane pipeline; see
/// core/backend.hpp for the interface and registry.
enum class BackendId : std::uint8_t { kInterp = 0, kWavelet = 1 };

/// True when `id` names a registered backend (defined with the registry in
/// backend.cpp; used by Header::parse to reject forged backend ids).
bool backend_id_known(std::uint8_t id);

template <typename T>
constexpr DataType data_type_of();
template <>
constexpr DataType data_type_of<float>() { return DataType::kFloat32; }
template <>
constexpr DataType data_type_of<double>() { return DataType::kFloat64; }

/// Archive segment kinds (SegmentId::kind).
inline constexpr std::uint16_t kSegBase = 0;   // outliers (+ codes if solid)
inline constexpr std::uint16_t kSegPlane = 1;  // one bitplane of one level
/// Backend-defined per-block auxiliary data, fetched with the base segments
/// (e.g. the wavelet backend's spatial correction list).  v3 archives only.
inline constexpr std::uint16_t kSegAux = 2;

struct LevelHeader {
  std::uint64_t count = 0;       // elements (slots) at this level
  bool progressive = false;      // bitplaned vs stored whole
  std::uint32_t n_planes = 0;    // stored planes: bits [0, n_planes)
  /// truncation_loss_table entries 0..n_planes, in quantization-step units:
  /// worst |value| lost by zeroing the d lowest planes.
  std::vector<std::uint64_t> loss;
  std::uint64_t outlier_count = 0;
};

struct Header {
  DataType dtype = DataType::kFloat64;
  Dims dims;
  double eb = 0.0;  // absolute quantization error bound
  InterpKind interp = InterpKind::kCubic;
  std::uint32_t prefix_bits = 2;
  double data_min = 0.0;
  double data_max = 0.0;
  /// Block decomposition side length (archive format v2+); 0 = whole-field
  /// archive described by `levels` alone.
  std::uint32_t block_side = 0;
  /// Progressive backend that produced (and can decode) the payload.  The
  /// interpolation backend keeps writing the v1/v2 layouts; any other backend
  /// forces the v3 layout, which records the id plus an opaque metadata blob
  /// the backend validates and interprets itself.
  BackendId backend = BackendId::kInterp;
  Bytes backend_meta;
  /// Layout the header was parsed from (1, 2 or 3).  Output of parse() only;
  /// serialize() derives the layout from `backend` and `block_side`.
  std::uint8_t format = 1;
  /// Index 0 = finest level (level 1 in the paper's numbering).  Used when
  /// block_side == 0.
  std::vector<LevelHeader> levels;
  /// Per-block level tables (block ordinal -> levels), used when
  /// block_side != 0.  Block geometry is derived from dims + block_side
  /// (BlockGrid), so only the level tables are serialized.
  std::vector<std::vector<LevelHeader>> block_levels;

  /// Self-versioned: whole-field interp headers serialize in the v1 layout
  /// (first byte = dtype, 0 or 1), block interp headers prepend a format tag
  /// byte 2, and non-interp backends prepend tag 3 followed by the backend id
  /// and metadata blob.  parse() distinguishes them by that first byte.
  Bytes serialize() const;
  static Header parse(const Bytes& raw);
};

}  // namespace ipcomp
