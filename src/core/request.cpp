#include "core/request.hpp"

#include <cstdio>

#include "core/header.hpp"

namespace ipcomp {

namespace {

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string to_string(const Request& req, std::size_t rank) {
  std::string s;
  if (std::holds_alternative<Request::Full>(req.target)) {
    s = "full";
  } else if (const auto* eb = std::get_if<Request::ErrorBound>(&req.target)) {
    s = "error_bound " + num(eb->target);
  } else if (const auto* bb = std::get_if<Request::ByteBudget>(&req.target)) {
    s = "bytes " + std::to_string(bb->budget);
  } else {
    s = "bitrate " + num(std::get<Request::Bitrate>(req.target).bits_per_value);
  }
  if (req.region) {
    const std::size_t r = rank < kMaxRank ? rank : kMaxRank;
    std::string lo, hi;
    for (std::size_t i = 0; i < r; ++i) {
      // Append piecewise: operator+ of a literal and a std::to_string
      // temporary trips the GCC 12 -Wrestrict false positive (PR 105329).
      if (i) {
        lo.append(",");
        hi.append(",");
      }
      lo.append(std::to_string(req.region->lo[i]));
      hi.append(std::to_string(req.region->hi[i]));
    }
    s.append(" within [").append(lo).append("):[").append(hi).append(")");
  }
  return s;
}

std::string to_string(const SegmentId& id) {
  std::string s;
  if (id.kind == kSegBase) {
    s = "base L" + std::to_string(id.level);
  } else if (id.kind == kSegPlane) {
    s = "plane L" + std::to_string(id.level) + " k" + std::to_string(id.plane);
  } else if (id.kind == kSegAux) {
    s = "aux";
  } else {
    s = "kind" + std::to_string(id.kind) + " L" + std::to_string(id.level) +
        " k" + std::to_string(id.plane);
  }
  return s + " b" + std::to_string(id.block);
}

}  // namespace ipcomp
