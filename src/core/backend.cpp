#include "core/backend.hpp"

#include <stdexcept>

#include "bitplane/bitplane.hpp"
#include "bitplane/predictive.hpp"
#include "coding/codec.hpp"
#include "core/interp_backend.hpp"
#include "util/parallel.hpp"
#include "wavelet/wavelet_backend.hpp"

namespace ipcomp {

const char* to_string(BackendId id) {
  switch (id) {
    case BackendId::kInterp: return "interp";
    case BackendId::kWavelet: return "wavelet";
  }
  return "?";
}

namespace {

/// The registry: one stateless singleton per backend, indexed by id.
///
/// Thread contract: internally-synchronized.  The singletons are const,
/// hold no mutable state, and are constructed under C++ magic-static
/// initialization, so concurrent first-touch from any number of threads —
/// including N compressions racing through backend_for() on process start —
/// is safe (tests/test_concurrency.cpp stresses exactly this under TSan).
const ProgressiveBackend* registry_lookup(std::uint8_t id) {
  static const InterpBackend interp;
  static const WaveletBackend wavelet;
  switch (static_cast<BackendId>(id)) {
    case BackendId::kInterp: return &interp;
    case BackendId::kWavelet: return &wavelet;
  }
  return nullptr;
}

}  // namespace

bool backend_id_known(std::uint8_t id) { return registry_lookup(id) != nullptr; }

const ProgressiveBackend& backend_for(BackendId id) {
  const ProgressiveBackend* be = registry_lookup(static_cast<std::uint8_t>(id));
  if (!be) throw std::runtime_error("ipcomp: unknown backend id");
  return *be;
}

const ProgressiveBackend* backend_by_name(const std::string& name) {
  for (std::uint8_t id = 0;; ++id) {
    const ProgressiveBackend* be = registry_lookup(id);
    if (!be) return nullptr;
    if (name == be->name()) return be;
  }
}

Bytes serialize_base_segment(const LevelScratch& ls, bool progressive,
                             CodecPolicy codec) {
  ByteWriter w;
  w.varint(ls.outliers.size());
  std::uint64_t prev = 0;
  for (auto [slot, value] : ls.outliers) {
    w.varint(slot - prev);
    w.f64(value);
    prev = slot;
  }
  if (!progressive) {
    // Solid level: store the whole code array through the codec.
    Bytes raw(ls.codes.size() * 4);
    for (std::size_t i = 0; i < ls.codes.size(); ++i) {
      std::uint32_t c = ls.codes[i];
      raw[4 * i + 0] = static_cast<std::uint8_t>(c);
      raw[4 * i + 1] = static_cast<std::uint8_t>(c >> 8);
      raw[4 * i + 2] = static_cast<std::uint8_t>(c >> 16);
      raw[4 * i + 3] = static_cast<std::uint8_t>(c >> 24);
    }
    Bytes packed = codec_compress({raw.data(), raw.size()}, codec);
    w.varint(packed.size());
    w.bytes(packed);
  }
  return w.take();
}

void append_plane_segments(const std::vector<std::uint32_t>& codes,
                           std::vector<PlaneBits>&& planes,
                           std::uint16_t level_tag, std::uint32_t block,
                           const Options& opt,
                           std::vector<std::pair<SegmentId, Bytes>>& out) {
  const unsigned n_planes = static_cast<unsigned>(planes.size());
  if (n_planes == 0) return;
  std::vector<Bytes> packed(n_planes);
  parallel_for(0, n_planes, [&](std::size_t k) {
    Bytes encoded = opt.prefix_bits == 0
                        ? std::move(planes[k])
                        : predictive_encode_plane(codes, planes[k],
                                                  static_cast<unsigned>(k),
                                                  opt.prefix_bits);
    packed[k] = codec_compress({encoded.data(), encoded.size()}, opt.codec);
  }, /*grain=*/1);
  for (unsigned k = 0; k < n_planes; ++k) {
    out.emplace_back(SegmentId{kSegPlane, level_tag, k, block},
                     std::move(packed[k]));
  }
}

}  // namespace ipcomp
