// Unified retrieval requests and inspectable retrieval plans.
//
// A Request is one value expressing what a caller wants out of a progressive
// archive: a fidelity target (error bound, byte budget, bitrate, or full
// fidelity) plus an optional region box scoping the request to the blocks
// that intersect it.  This makes "this region at eb 1e-3" — previously
// inexpressible (the legacy region call was full-fidelity-only) — a
// first-class request.
//
// ProgressiveReader turns a Request into a RetrievalPlan *before any payload
// byte moves* (plan() touches only the header and the segment-size index,
// both part of the open cost).  The plan is fully inspectable — ordered
// segment list, predicted new bytes, predicted guaranteed error, per-level
// plane targets — so callers can do admission control, prefetch scheduling,
// or dry-run reporting, and tests can assert planner decisions without I/O.
// execute() then fetches exactly the planned segments through a single bulk
// SegmentSource::read_many call and folds them into the reconstruction.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "io/archive.hpp"
#include "util/dims.hpp"

namespace ipcomp {

/// Axis-aligned half-open box [lo, hi) in element coordinates; entries past
/// the archive's rank are ignored.
struct RegionBox {
  std::array<std::size_t, kMaxRank> lo{};
  std::array<std::size_t, kMaxRank> hi{};
};

/// One retrieval request: a fidelity target plus an optional region scope.
struct Request {
  /// Retrieve until the guaranteed L∞ error is <= target (targets below the
  /// compression eb retrieve everything).
  struct ErrorBound {
    double target = 0.0;
  };
  /// Retrieve at most `budget` additional bytes, minimizing error.
  struct ByteBudget {
    std::uint64_t budget = 0;
  };
  /// Keep the *cumulative* retrieved volume within bits_per_value * n / 8
  /// bytes, where n counts the whole field's elements (also under a region
  /// scope — the paper's fixed-bitrate mode is a whole-field budget).
  struct Bitrate {
    double bits_per_value = 0.0;
  };
  /// Retrieve every remaining plane (error <= compression eb).
  struct Full {};

  using Target = std::variant<Full, ErrorBound, ByteBudget, Bitrate>;

  Target target = Full{};
  /// When set, the request plans over — and its guarantee covers — only the
  /// blocks intersecting the box.  On a whole-field (v1) archive the single
  /// block spans the field, so a region request degenerates to uniform.
  std::optional<RegionBox> region;

  static Request error_bound(double target) {
    return {ErrorBound{target}, std::nullopt};
  }
  static Request bytes(std::uint64_t budget) {
    return {ByteBudget{budget}, std::nullopt};
  }
  static Request bitrate(double bits_per_value) {
    return {Bitrate{bits_per_value}, std::nullopt};
  }
  static Request full() { return {}; }

  /// Same request scoped to the half-open box [lo, hi).
  Request within(const std::array<std::size_t, kMaxRank>& lo,
                 const std::array<std::size_t, kMaxRank>& hi) const {
    Request r = *this;
    r.region = RegionBox{lo, hi};
    return r;
  }
};

/// Human-readable request summary ("error_bound 1e-3 within [0,0,0):[32,32,32)");
/// `rank` bounds how many region coordinates are printed.
std::string to_string(const Request& req, std::size_t rank = kMaxRank);

/// Human-readable segment id ("plane L2 k7 b3", "base L1 b0", "aux b2").
std::string to_string(const SegmentId& id);

/// What a Request will do, computed before any payload byte moves.
/// Produced by ProgressiveReader::plan(), consumed (once) by execute().
struct RetrievalPlan {
  /// The request this plan answers.
  Request request;
  /// Every segment execute() will fetch, in fetch order: for uniform plans
  /// all pending base (+aux) segments in block order, then plane segments per
  /// block, level-ascending and MSB-first within a level; region plans
  /// interleave base and planes per intersecting block.
  std::vector<SegmentId> segments;
  /// Predicted bytes execute() will charge, including the archive open cost
  /// if this is the reader's first executed request.  Exact: equals the
  /// resulting RetrievalStats.bytes_new.
  std::uint64_t bytes_new = 0;
  /// Predicted guaranteed L∞ error after execution (region-scoped when the
  /// request has a region).  Exact: equals RetrievalStats.guaranteed_error.
  double guaranteed_error = 0.0;
  /// Per level: planes-from-the-top target on the plan's aggregate axis
  /// (whole-field for uniform plans, intersecting-blocks for region plans).
  std::vector<unsigned> plane_targets;
  /// Block ordinals in scope — the blocks execute() reconstructs.
  std::vector<std::uint32_t> blocks;
  /// True when the plan (and its error guarantee) covers only `blocks`.
  bool region_scoped = false;
  /// Reader state serial this plan was computed against; execute() rejects
  /// stale plans (the reader advanced since plan() ran).
  std::uint64_t epoch = 0;
};

}  // namespace ipcomp
