// Progressive retrieval (paper Algorithms 1 & 2 + §5 data loading).
//
// A ProgressiveReader owns the retrieval state for one archive: which planes
// of which levels are resident, the partial negabinary codes, and the current
// reconstruction.  Each request plans the minimum set of additional plane
// segments (DP knapsack over the header's δy tables), fetches exactly those,
// and reconstructs in a single interpolation sweep:
//   * first request — full sweep from the partial codes (Algorithm 1);
//   * refinements  — a sweep over the *newly added* code bits produces a
//     delta field that is added onto the previous output (Algorithm 2).
// The delta form is exact because the reconstruction map is linear in the
// dequantized differences and negabinary decoding is linear over bit
// positions (DESIGN.md §6.5).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/header.hpp"
#include "io/archive.hpp"
#include "loader/error_model.hpp"
#include "loader/optimizer.hpp"
#include "interp/sweep.hpp"

namespace ipcomp {

struct ReaderConfig {
  ErrorModel error_model = ErrorModel::kConservative;
  PlannerKind planner = PlannerKind::kDynamicProgramming;
};

/// Outcome of one retrieval request.
struct RetrievalStats {
  /// eb + Σ amplified truncation loss under the current plane set: the L∞
  /// error the reader guarantees for its current output.
  double guaranteed_error = 0.0;
  /// Bytes fetched by this request (segments + first-touch header cost).
  std::size_t bytes_new = 0;
  /// Cumulative bytes fetched from the source so far.
  std::size_t bytes_total = 0;
  /// Retrieved bits per value so far (bytes_total * 8 / n).
  double bitrate = 0.0;
};

template <typename T>
class ProgressiveReader {
 public:
  explicit ProgressiveReader(SegmentSource& src, ReaderConfig cfg = {});

  /// Retrieve so the output's L∞ error is guaranteed <= target (must be
  /// >= the compression eb; smaller targets retrieve everything).
  RetrievalStats request_error_bound(double target);

  /// Retrieve at most `budget_bytes` additional bytes, minimizing error.
  RetrievalStats request_bytes(std::uint64_t budget_bytes);

  /// Retrieve so the *cumulative* retrieved volume stays within
  /// bits_per_value * n / 8 bytes (the paper's fixed-bitrate mode).
  RetrievalStats request_bitrate(double bits_per_value);

  /// Retrieve all remaining planes (full-fidelity output, error <= eb).
  RetrievalStats request_full();

  const std::vector<T>& data() const { return xhat_; }
  const Header& header() const { return header_; }
  std::size_t element_count() const { return ls_.dims.count(); }
  std::size_t bytes_loaded() const { return src_.bytes_read(); }
  double compression_eb() const { return header_.eb; }
  double current_guaranteed_error() const;

 private:
  void ensure_base_loaded();
  std::vector<LevelPlanInput> planner_inputs() const;
  RetrievalStats apply_plan(const LoadPlan& plan, std::size_t bytes_before);
  void reconstruct_full();
  void reconstruct_delta(const std::vector<std::vector<std::uint32_t>>& delta);
  bool is_outlier(unsigned li, std::size_t slot, double& value) const;

  SegmentSource& src_;
  ReaderConfig cfg_;
  /// Header/index bytes charged at construction, attributed to the first
  /// request so that bytes_new sums to bytes_total.
  std::size_t unattributed_open_cost_ = 0;
  Header header_;
  LevelStructure ls_;
  bool base_loaded_ = false;
  bool have_recon_ = false;

  std::vector<std::vector<std::uint32_t>> codes_;  // per level, partial
  std::vector<unsigned> planes_used_;              // per level, from the top
  std::vector<Bytes> outlier_bitmap_;              // per level (maybe empty)
  std::vector<std::unordered_map<std::size_t, double>> outlier_value_;
  std::vector<T> xhat_;
};

extern template class ProgressiveReader<float>;
extern template class ProgressiveReader<double>;

}  // namespace ipcomp
