// Progressive retrieval (paper Algorithms 1 & 2 + §5 data loading).
//
// A ProgressiveReader owns the retrieval state for one archive: which planes
// of which levels are resident, the partial negabinary codes, and the current
// reconstruction.  Each request plans the minimum set of additional plane
// segments (DP knapsack over the header's δy tables), fetches exactly those,
// and hands the new bits to the archive's ProgressiveBackend:
//   * first request — full backend reconstruction from the partial codes
//     (Algorithm 1);
//   * refinements  — the backend folds the *newly added* code bits into its
//     existing output (Algorithm 2 for the interpolation backend; transform
//     backends may simply rebuild the block).
//
// Everything format- and transform-specific — code -> field reconstruction
// and the per-level loss amplification the planner prices with — lives in
// the backend (core/backend.hpp); this class owns the shared machinery:
// segment fetching and byte accounting, base/plane decoding, the plane
// planner, and block scheduling.
//
// Block-decomposed (v2/v3) archives hold one independent code/outlier state
// per block.  Uniform requests (error bound / bytes / bitrate / full) plan
// over per-level aggregates — plane sizes summed and truncation losses maxed
// across blocks — fetch segments serially, then decode and reconstruct the
// blocks concurrently.  request_region() additionally serves region-of-
// interest retrieval: it reads and reconstructs only the blocks intersecting
// the requested region.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/backend.hpp"
#include "core/blocks.hpp"
#include "core/header.hpp"
#include "io/archive.hpp"
#include "loader/error_model.hpp"
#include "loader/optimizer.hpp"

namespace ipcomp {

struct ReaderConfig {
  ErrorModel error_model = ErrorModel::kConservative;
  PlannerKind planner = PlannerKind::kDynamicProgramming;
};

/// Outcome of one retrieval request.
struct RetrievalStats {
  /// eb + Σ amplified truncation loss under the current plane set: the L∞
  /// error the reader guarantees for its current output.  For
  /// request_region() the guarantee covers the requested region only.
  double guaranteed_error = 0.0;
  /// Bytes fetched by this request (segments + first-touch header cost).
  std::size_t bytes_new = 0;
  /// Cumulative bytes fetched from the source so far.
  std::size_t bytes_total = 0;
  /// Retrieved bits per value so far (bytes_total * 8 / n).
  double bitrate = 0.0;
};

template <typename T>
class ProgressiveReader {
 public:
  explicit ProgressiveReader(SegmentSource& src, ReaderConfig cfg = {});

  /// Retrieve so the output's L∞ error is guaranteed <= target (must be
  /// >= the compression eb; smaller targets retrieve everything).
  RetrievalStats request_error_bound(double target);

  /// Retrieve at most `budget_bytes` additional bytes, minimizing error.
  RetrievalStats request_bytes(std::uint64_t budget_bytes);

  /// Retrieve so the *cumulative* retrieved volume stays within
  /// bits_per_value * n / 8 bytes (the paper's fixed-bitrate mode).
  RetrievalStats request_bitrate(double bits_per_value);

  /// Retrieve all remaining planes (full-fidelity output, error <= eb).
  RetrievalStats request_full();

  /// Region-of-interest retrieval: load the blocks of a block-decomposed
  /// archive that intersect the half-open box [lo, hi) — and only those —
  /// at full fidelity.  Elements of data() inside the region are then within
  /// eb of the original; elements in non-intersecting blocks are whatever
  /// earlier requests produced (zero if none ran).  On a whole-field (v1)
  /// archive the single block spans the field, so this equals request_full.
  RetrievalStats request_region(const std::array<std::size_t, kMaxRank>& lo,
                                const std::array<std::size_t, kMaxRank>& hi);

  const std::vector<T>& data() const { return xhat_; }
  const Header& header() const { return header_; }
  const ProgressiveBackend& backend() const { return *backend_; }
  const BlockGrid& block_grid() const { return grid_; }
  std::size_t element_count() const { return header_.dims.count(); }
  std::size_t bytes_loaded() const { return src_.bytes_read(); }
  double compression_eb() const { return header_.eb; }
  double current_guaranteed_error() const;

 private:
  /// Per-block retrieval state: the backend-facing BlockCodes plus the
  /// reader's own bookkeeping.  Whole-field archives hold exactly one.
  struct BlockState {
    BlockCodes bc;
    std::vector<unsigned> planes_used;  // per level, from the top
    bool base_loaded = false;
    bool have_recon = false;
  };

  /// Raw (still compressed) segment bytes fetched for one block by the
  /// current request, in decode order; decoding runs in parallel per block.
  struct FetchedBlock {
    std::vector<Bytes> base;  // per level; empty when already resident
    bool has_base = false;
    Bytes aux;  // kSegAux payload, fetched with the base when present
    /// (level index, absolute plane position, payload), MSB-first per level.
    std::vector<std::tuple<unsigned, unsigned, Bytes>> planes;
  };

  const std::vector<LevelHeader>& levels_of(std::size_t b) const {
    return header_.block_side == 0 ? header_.levels : header_.block_levels[b];
  }

  void ensure_base_loaded();
  void fetch_base(std::size_t b, FetchedBlock& out);
  void decode_base(std::size_t b, FetchedBlock& fetched);
  /// Queue the not-yet-resident plane segments of block `b` needed to reach
  /// `targets[li]` planes-from-the-top per level (block-local units).
  void fetch_planes(std::size_t b, const std::vector<unsigned>& targets,
                    FetchedBlock& out);
  /// Decode fetched planes into the block's codes, then hand the block to
  /// the backend (full reconstruct on first touch, refine afterwards).
  void decode_and_reconstruct(std::size_t b, FetchedBlock& fetched);
  std::vector<LevelPlanInput> planner_inputs() const;
  RetrievalStats apply_plan(const LoadPlan& plan, std::size_t bytes_before);
  RetrievalStats finish_stats(std::size_t before);
  /// Per-block plane targets for a uniform plan entry (global planes-from-top
  /// axis, see planner_inputs()).
  std::vector<unsigned> block_targets(std::size_t b,
                                      const std::vector<unsigned>& global) const;

  SegmentSource& src_;
  ReaderConfig cfg_;
  const ProgressiveBackend* backend_ = nullptr;
  /// Header/index bytes charged at construction, attributed to the first
  /// request so that bytes_new sums to bytes_total.
  std::size_t unattributed_open_cost_ = 0;
  Header header_;
  BlockGrid grid_;
  unsigned n_levels_ = 0;  // max over blocks
  /// Per level: max n_planes over blocks — the global planes-from-top axis
  /// uniform requests plan on.
  std::vector<unsigned> agg_planes_;
  /// [level][plane] -> total compressed bytes across blocks, computed once
  /// at construction (segment sizes are immutable; re-querying the source
  /// per request would cost O(blocks x planes) map lookups each time).
  std::vector<std::vector<std::uint64_t>> agg_plane_size_;
  /// [level][plane] -> bytes of those segments already fetched (uniform
  /// requests and request_region alike); the planner prices only the rest.
  std::vector<std::vector<std::uint64_t>> fetched_plane_bytes_;
  /// Per level: planes-from-top every block is guaranteed to have (uniform
  /// requests only; request_region may push single blocks further).
  std::vector<unsigned> planes_used_;

  std::vector<BlockState> blocks_;
  std::vector<T> xhat_;
};

extern template class ProgressiveReader<float>;
extern template class ProgressiveReader<double>;

}  // namespace ipcomp
