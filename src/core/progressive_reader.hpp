// Progressive retrieval (paper Algorithms 1 & 2 + §5 data loading).
//
// A ProgressiveReader owns the retrieval state for one archive: which planes
// of which levels are resident, the partial negabinary codes, and the current
// reconstruction.  Retrieval is an explicit plan/execute split:
//   * plan(Request) computes — without moving a payload byte — the minimum
//     set of additional segments (DP knapsack over the header's δy tables)
//     that meets the request's fidelity target, returning an inspectable
//     RetrievalPlan (ordered segment list, predicted bytes, predicted
//     guaranteed error, per-level plane targets);
//   * execute(plan) fetches exactly the planned segments through a single
//     SegmentSource::read_many call (FileSource coalesces adjacent ranges
//     into bulk reads) and hands the new bits to the archive's
//     ProgressiveBackend: a full backend reconstruction from the partial
//     codes on a block's first touch (Algorithm 1), incremental refinement
//     afterwards (Algorithm 2 for the interpolation backend; transform
//     backends may simply rebuild the block).
// retrieve(Request) is the one-call combinator (execute(plan(req))).  The
// legacy request_* spellings of the same thing were deprecated and have been
// removed; build a Request instead.
//
// Everything format- and transform-specific — code -> field reconstruction
// and the per-level loss amplification the planner prices with — lives in
// the backend (core/backend.hpp); this class owns the shared machinery:
// segment planning/fetching and byte accounting, base/plane decoding, the
// plane planner, and block scheduling.
//
// Block-decomposed (v2/v3) archives hold one independent code/outlier state
// per block.  Uniform requests (error bound / bytes / bitrate / full) plan
// over per-level aggregates — plane sizes summed and truncation losses maxed
// across blocks — then decode and reconstruct the blocks concurrently.
// A Request carrying a region box additionally scopes retrieval to the
// blocks intersecting the box: the same DP planner runs over those blocks'
// aggregates, so a region can be combined with any fidelity target
// (Request::full().within(lo, hi) is the full-fidelity special case).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/backend.hpp"
#include "core/blocks.hpp"
#include "core/header.hpp"
#include "core/request.hpp"
#include "io/archive.hpp"
#include "loader/error_model.hpp"
#include "loader/optimizer.hpp"

namespace ipcomp {

struct ReaderConfig {
  ErrorModel error_model = ErrorModel::kConservative;
  PlannerKind planner = PlannerKind::kDynamicProgramming;
};

/// Outcome of one retrieval request.
struct RetrievalStats {
  /// eb + Σ amplified truncation loss under the current plane set: the L∞
  /// error the reader guarantees for its current output.  For region-scoped
  /// requests the guarantee covers the requested region only.
  double guaranteed_error = 0.0;
  /// Bytes fetched by this request (segments + first-touch header cost).
  /// The archive open cost (header + segment table, charged at reader
  /// construction) is attributed to the *first* executed request — even one
  /// that fetches no segments — so that Σ bytes_new over any request
  /// sequence, uniform and region-scoped alike, equals bytes_total.
  std::size_t bytes_new = 0;
  /// Cumulative bytes fetched from the source so far.
  std::size_t bytes_total = 0;
  /// Retrieved bits per value so far (bytes_total * 8 / n).
  double bitrate = 0.0;
};

/// Thread contract: externally-synchronized, with const-safe planning.
/// A reader is the single-owner retrieval state for one archive: execute()
/// and retrieve() advance the resident plane set, the epoch serial, and the
/// reconstruction, and must be serialized by the caller.  plan() and every
/// other const member are *pure* reads of that state — concurrent plan()
/// calls on one reader (admission control probing many requests at once) are
/// safe, return identical plans for identical requests, and never touch the
/// SegmentSource payload path (tests/test_concurrency.cpp pins this under
/// TSan).  Scaling to many concurrent clients means one reader per client
/// over per-client sources of one shared archive — the serve layer
/// (serve/archive_set.hpp) packages exactly that: per-client Sessions whose
/// SessionSources share one cache + pooled I/O tier.
template <typename T>
class ProgressiveReader {
 public:
  explicit ProgressiveReader(SegmentSource& src, ReaderConfig cfg = {});

  /// Compute what `req` would fetch, without any payload I/O: plan() touches
  /// only the parsed header and the segment-size index (both part of the
  /// open cost), so it is free to call for admission control, prefetch
  /// scheduling, or dry-run inspection.  The returned plan's bytes_new and
  /// guaranteed_error predictions are exact for the execute() that follows.
  RetrievalPlan plan(const Request& req) const;

  /// Fetch the plan's segments — all of them through one bulk
  /// SegmentSource::read_many call — and fold them into the reconstruction.
  /// A plan is valid for one execution against the reader state it was
  /// computed from; executing a stale plan (the reader advanced since its
  /// plan() ran) throws std::logic_error.
  RetrievalStats execute(const RetrievalPlan& plan);

  /// One-call retrieval: execute(plan(req)).  The Request factories cover
  /// every mode — Request::error_bound / bytes / bitrate / full, each
  /// optionally scoped with .within(lo, hi) — so this is the single entry
  /// point for callers that don't need to inspect the plan.
  RetrievalStats retrieve(const Request& req) { return execute(plan(req)); }

  /// Advance the planning residency for `p` without decoding anything: the
  /// epoch, the open-cost attribution, the per-level fetched-byte and
  /// planes-used bookkeeping all move exactly as execute() would move them,
  /// but no payload is inflated and no reconstruction exists.  This is the
  /// server side of remote serving (net/server.hpp): the daemon fetches the
  /// plan's segments, ships them to the client, and acknowledges the plan so
  /// the *next* plan prices only what that client still misses.  The caller
  /// must already have fetched exactly the plan's segments through this
  /// reader's source (the stats ledger is shared with it).  A reader that
  /// has acknowledged is a pricing mirror: execute()/retrieve() on it throw,
  /// and data() stays empty.  Throws std::logic_error on a stale plan or on
  /// a reader that already holds decoded state.
  RetrievalStats acknowledge(const RetrievalPlan& p);

  /// Current state serial (plans record it; see RetrievalPlan::epoch).
  std::uint64_t epoch() const { return epoch_; }

  const std::vector<T>& data() const { return xhat_; }
  const Header& header() const { return header_; }
  const ProgressiveBackend& backend() const { return *backend_; }
  const BlockGrid& block_grid() const { return grid_; }
  std::size_t element_count() const { return header_.dims.count(); }
  std::size_t bytes_loaded() const { return src_.stats().bytes_read; }
  double compression_eb() const { return header_.eb; }
  double current_guaranteed_error() const;

 private:
  /// Per-block retrieval state: the backend-facing BlockCodes plus the
  /// reader's own bookkeeping.  Whole-field archives hold exactly one.
  struct BlockState {
    BlockCodes bc;
    std::vector<unsigned> planes_used;  // per level, from the top
    bool base_loaded = false;
    bool have_recon = false;
  };

  /// Raw (still compressed) segment bytes fetched for one block by the
  /// current request, in decode order; decoding runs in parallel per block.
  struct FetchedBlock {
    std::vector<Bytes> base;  // per level; empty when already resident
    bool has_base = false;
    Bytes aux;  // kSegAux payload, fetched with the base when present
    /// (level index, absolute plane position, payload), MSB-first per level.
    std::vector<std::tuple<unsigned, unsigned, Bytes>> planes;
  };

  const std::vector<LevelHeader>& levels_of(std::size_t b) const {
    return header_.block_side == 0 ? header_.levels : header_.block_levels[b];
  }

  void decode_base(std::size_t b, FetchedBlock& fetched);
  /// Decode fetched planes into the block's codes, then hand the block to
  /// the backend (full reconstruct on first touch, refine afterwards).
  void decode_and_reconstruct(std::size_t b, FetchedBlock& fetched);
  std::vector<LevelPlanInput> planner_inputs() const;
  RetrievalStats finish_stats(std::size_t before);
  /// Per-block plane targets for a plan-axis entry: `axis[li]` planes from
  /// the top of a per-level axis `depths[li]` planes deep (the whole-field
  /// aggregate for uniform plans, the intersecting-blocks aggregate for
  /// region plans).
  std::vector<unsigned> block_targets(std::size_t b,
                                      const std::vector<unsigned>& axis,
                                      const std::vector<unsigned>& depths) const;
  /// Plan-axis geometry and planner inputs over `blocks` only: per-level
  /// depths (max n_planes), the resident floor (min planes-from-top, counted
  /// on the axis), and LevelPlanInputs pricing exactly the segments those
  /// blocks still miss.
  void region_axis(const std::vector<std::uint32_t>& blocks,
                   std::vector<unsigned>& depths, std::vector<unsigned>& floor,
                   std::vector<LevelPlanInput>& inputs) const;
  /// Guaranteed L∞ error with every block at `floor[li]` planes-from-top on
  /// the whole-field aggregate axis (current_guaranteed_error() at the
  /// current floor; plan() predicts with the post-execution floor).
  double guarantee_for(const std::vector<unsigned>& floor) const;
  /// Region-scoped guarantee over `blocks` from their individual resident
  /// plane counts; `axis_targets`/`depths` (optional, for plan-time
  /// prediction) raise each block to its planned target first.
  double region_guarantee(const std::vector<std::uint32_t>& blocks,
                          const std::vector<unsigned>* axis_targets,
                          const std::vector<unsigned>* depths) const;
  /// Append the not-yet-resident plane segments of block `b` needed to reach
  /// `targets[li]` planes-from-the-top per level (block-local units), in
  /// fetch order (level-ascending, MSB-first within a level).
  void plan_block_planes(std::size_t b, const std::vector<unsigned>& targets,
                         std::vector<SegmentId>& out) const;
  /// Append block `b`'s base (+aux) segments when not yet resident.
  void plan_block_base(std::size_t b, std::vector<SegmentId>& out) const;

  // ---- retrieval state --------------------------------------------------
  // Everything below `src_`/`cfg_` is the externally-synchronized mutable
  // state of the class contract above: written only by the constructor and
  // execute() (via decode_base / decode_and_reconstruct), read by plan()
  // and the const accessors.  No member function writes any of it from a
  // const path — that is what keeps concurrent plan() calls pure.
  SegmentSource& src_;
  ReaderConfig cfg_;
  const ProgressiveBackend* backend_ = nullptr;
  /// Header/index bytes charged at construction, attributed to the first
  /// request so that bytes_new sums to bytes_total.
  std::size_t unattributed_open_cost_ = 0;
  /// State serial: bumped by every execute(); plans record it so execute()
  /// can reject plans computed against an older state.
  std::uint64_t epoch_ = 0;
  /// Set by acknowledge(): the reader is a plan-pricing mirror with no
  /// decoded state, so execute() must never run on it.
  bool mirror_ = false;
  Header header_;
  BlockGrid grid_;
  unsigned n_levels_ = 0;  // max over blocks
  /// Per level: max n_planes over blocks — the global planes-from-top axis
  /// uniform requests plan on.
  std::vector<unsigned> agg_planes_;
  /// [level][plane] -> total compressed bytes across blocks, computed once
  /// at construction (segment sizes are immutable; re-querying the source
  /// per request would cost O(blocks x planes) map lookups each time).
  std::vector<std::vector<std::uint64_t>> agg_plane_size_;
  /// [level][plane] -> bytes of those segments already fetched (uniform and
  /// region-scoped requests alike); the planner prices only the rest.
  std::vector<std::vector<std::uint64_t>> fetched_plane_bytes_;
  /// Per level: planes-from-top every block is guaranteed to have (uniform
  /// requests only; region-scoped requests may push single blocks further).
  std::vector<unsigned> planes_used_;

  std::vector<BlockState> blocks_;
  std::vector<T> xhat_;
};

extern template class ProgressiveReader<float>;
extern template class ProgressiveReader<double>;

}  // namespace ipcomp
