#include "core/header.hpp"

#include <stdexcept>

namespace ipcomp {

Bytes Header::serialize() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(dtype));
  w.u8(static_cast<std::uint8_t>(dims.rank()));
  for (std::size_t i = 0; i < dims.rank(); ++i) w.varint(dims[i]);
  w.f64(eb);
  w.u8(static_cast<std::uint8_t>(interp));
  w.u8(static_cast<std::uint8_t>(prefix_bits));
  w.f64(data_min);
  w.f64(data_max);
  w.varint(levels.size());
  for (const LevelHeader& l : levels) {
    w.varint(l.count);
    w.u8(l.progressive ? 1 : 0);
    w.varint(l.n_planes);
    if (l.loss.size() != l.n_planes + 1) {
      throw std::logic_error("header: loss table size mismatch");
    }
    for (auto v : l.loss) w.varint(v);
    w.varint(l.outlier_count);
  }
  return w.take();
}

Header Header::parse(const Bytes& raw) {
  ByteReader r({raw.data(), raw.size()});
  Header h;
  h.dtype = static_cast<DataType>(r.u8());
  std::size_t rank = r.u8();
  std::size_t extents[kMaxRank];
  if (rank == 0 || rank > kMaxRank) throw std::runtime_error("header: bad rank");
  for (std::size_t i = 0; i < rank; ++i) extents[i] = r.varint();
  h.dims = Dims::of_rank(rank, extents);
  h.eb = r.f64();
  h.interp = static_cast<InterpKind>(r.u8());
  h.prefix_bits = r.u8();
  h.data_min = r.f64();
  h.data_max = r.f64();
  std::size_t n_levels = r.varint();
  // Each level encodes to at least 5 bytes; a count beyond that is a forged
  // stream and must not drive the resize() allocation below.
  if (n_levels > r.remaining() / 5) throw std::runtime_error("header: bad level count");
  h.levels.resize(n_levels);
  for (LevelHeader& l : h.levels) {
    l.count = r.varint();
    l.progressive = r.u8() != 0;
    l.n_planes = static_cast<std::uint32_t>(r.varint());
    if (l.n_planes > 32) throw std::runtime_error("header: bad plane count");
    l.loss.resize(l.n_planes + 1);
    for (auto& v : l.loss) v = r.varint();
    l.outlier_count = r.varint();
  }
  return h;
}

}  // namespace ipcomp
