#include "core/header.hpp"

#include <stdexcept>

#include "core/blocks.hpp"

namespace ipcomp {

namespace {

/// First byte of a v2+ header blob.  v1 blobs start with the dtype byte
/// (0 or 1), so any first byte >= 2 unambiguously marks a tagged version.
constexpr std::uint8_t kHeaderV2Tag = 2;
/// v3 blobs additionally carry a backend id and an opaque metadata blob.
constexpr std::uint8_t kHeaderV3Tag = 3;

void write_levels(ByteWriter& w, const std::vector<LevelHeader>& levels) {
  w.varint(levels.size());
  for (const LevelHeader& l : levels) {
    w.varint(l.count);
    w.u8(l.progressive ? 1 : 0);
    w.varint(l.n_planes);
    if (l.loss.size() != l.n_planes + 1) {
      throw std::logic_error("header: loss table size mismatch");
    }
    for (auto v : l.loss) w.varint(v);
    w.varint(l.outlier_count);
  }
}

std::vector<LevelHeader> read_levels(ByteReader& r) {
  std::size_t n_levels = r.varint();
  // Each level encodes to at least 5 bytes; a count beyond that is a forged
  // stream and must not drive the resize() allocation below.
  if (n_levels > r.remaining() / 5) throw std::runtime_error("header: bad level count");
  std::vector<LevelHeader> levels(n_levels);
  for (LevelHeader& l : levels) {
    l.count = r.varint();
    l.progressive = r.u8() != 0;
    l.n_planes = static_cast<std::uint32_t>(r.varint());
    if (l.n_planes > 32) throw std::runtime_error("header: bad plane count");
    l.loss.resize(l.n_planes + 1);
    for (auto& v : l.loss) v = r.varint();
    l.outlier_count = r.varint();
  }
  return levels;
}

}  // namespace

Bytes Header::serialize() const {
  ByteWriter w;
  const bool v3 = backend != BackendId::kInterp;
  const bool v2 = !v3 && block_side != 0;
  if (v3) {
    w.u8(kHeaderV3Tag);
    w.u8(static_cast<std::uint8_t>(backend));
    w.varint(backend_meta.size());
    w.bytes(backend_meta);
  } else if (v2) {
    w.u8(kHeaderV2Tag);
  }
  w.u8(static_cast<std::uint8_t>(dtype));
  w.u8(static_cast<std::uint8_t>(dims.rank()));
  for (std::size_t i = 0; i < dims.rank(); ++i) w.varint(dims[i]);
  w.f64(eb);
  w.u8(static_cast<std::uint8_t>(interp));
  w.u8(static_cast<std::uint8_t>(prefix_bits));
  w.f64(data_min);
  w.f64(data_max);
  if (!v2 && !v3) {
    write_levels(w, levels);
    return w.take();
  }
  w.varint(block_side);
  if (v3 && block_side == 0) {
    write_levels(w, levels);
    return w.take();
  }
  w.varint(block_levels.size());
  for (const auto& bl : block_levels) write_levels(w, bl);
  return w.take();
}

Header Header::parse(const Bytes& raw) {
  ByteReader r({raw.data(), raw.size()});
  Header h;
  std::uint8_t first = r.u8();
  std::uint8_t format = 1;
  if (first >= kHeaderV2Tag) {
    if (first > kHeaderV3Tag) throw std::runtime_error("header: bad format tag");
    format = first;
    if (format == kHeaderV3Tag) {
      const std::uint8_t backend = r.u8();
      if (!backend_id_known(backend)) {
        throw std::runtime_error("header: unknown backend id");
      }
      h.backend = static_cast<BackendId>(backend);
      std::size_t meta_len = r.varint();
      if (meta_len > r.remaining()) {
        throw std::runtime_error("header: bad backend metadata length");
      }
      auto meta = r.bytes(meta_len);
      h.backend_meta.assign(meta.begin(), meta.end());
    }
    first = r.u8();
  }
  h.format = format;
  h.dtype = static_cast<DataType>(first);
  if (h.dtype != DataType::kFloat32 && h.dtype != DataType::kFloat64) {
    throw std::runtime_error("header: bad data type");
  }
  std::size_t rank = r.u8();
  std::size_t extents[kMaxRank];
  if (rank == 0 || rank > kMaxRank) throw std::runtime_error("header: bad rank");
  for (std::size_t i = 0; i < rank; ++i) extents[i] = r.varint();
  h.dims = Dims::of_rank(rank, extents);
  h.eb = r.f64();
  h.interp = static_cast<InterpKind>(r.u8());
  h.prefix_bits = r.u8();
  h.data_min = r.f64();
  h.data_max = r.f64();
  if (format == 1) {
    h.levels = read_levels(r);
    return h;
  }
  h.block_side = static_cast<std::uint32_t>(r.varint());
  if (format == kHeaderV3Tag && h.block_side == 0) {
    h.levels = read_levels(r);
    return h;
  }
  std::size_t n_blocks = r.varint();
  // The block table must match the geometry derived from dims + block_side;
  // that also rejects forged counts before they drive the resize() below.
  // BlockGrid::analyze throws for block_side == 1 (and parse already rejects
  // 0 in the v2 layout, which would make the table inconsistent with v1).
  if (h.block_side == 0) throw std::runtime_error("header: bad block side");
  BlockGrid grid = BlockGrid::analyze(h.dims, h.block_side);
  if (n_blocks != grid.n_blocks) {
    throw std::runtime_error("header: block table does not match geometry");
  }
  if (n_blocks > r.remaining()) throw std::runtime_error("header: bad block count");
  h.block_levels.resize(n_blocks);
  for (auto& bl : h.block_levels) bl = read_levels(r);
  return h;
}

}  // namespace ipcomp
